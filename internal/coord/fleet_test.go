package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
)

// TestDefaultWorkerNamesDistinct pins the PR-9 postmortem fix: two
// library-constructed workers with empty Names must get distinct
// defaults (and therefore distinct backoff-RNG seeds), not the shared
// host-pid name that made them retry in lockstep.
func TestDefaultWorkerNamesDistinct(t *testing.T) {
	w1, w2 := &Worker{}, &Worker{}
	w1.defaults()
	w2.defaults()
	if w1.Name == "" || w2.Name == "" {
		t.Fatalf("default names empty: %q, %q", w1.Name, w2.Name)
	}
	if w1.Name == w2.Name {
		t.Fatalf("two default-named workers collided on %q", w1.Name)
	}
	// An explicit name is never overwritten.
	w3 := &Worker{Name: "explicit"}
	w3.defaults()
	if w3.Name != "explicit" {
		t.Fatalf("defaults rewrote an explicit name to %q", w3.Name)
	}
}

// TestWorkersEndpoint covers registration over the wire: POST hello
// acks the heartbeat interval and marks the worker registered in the
// GET fleet view; a nameless hello is a 400; and a worker's Run loop
// registers itself without any cmd wiring.
func TestWorkersEndpoint(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("fleet")
	c := newTestCoord(t, Config{
		Experiments: []harness.Experiment{e}, Store: openStore(t),
		Heartbeat: 5 * time.Second,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	hello := func(h WorkerHello) (WorkerAck, int) {
		t.Helper()
		b, _ := json.Marshal(h)
		resp, err := http.Post(srv.URL+"/v1/workers", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ack WorkerAck
		_ = json.NewDecoder(resp.Body).Decode(&ack)
		return ack, resp.StatusCode
	}
	ack, code := hello(WorkerHello{Worker: "wa", Host: "h1", Pid: 42, KernelVariant: "sse"})
	if code != 200 || ack.HeartbeatMs != 5000 {
		t.Fatalf("hello = %d/%+v, want 200 with the configured heartbeat", code, ack)
	}
	if _, code := hello(WorkerHello{Host: "h1"}); code != http.StatusBadRequest {
		t.Fatalf("nameless hello = %d, want 400", code)
	}

	resp, err := http.Get(srv.URL + "/v1/workers")
	if err != nil {
		t.Fatal(err)
	}
	var snap WorkersSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(snap.Workers) != 1 {
		t.Fatalf("fleet view = %+v, want exactly wa", snap.Workers)
	}
	w := snap.Workers[0]
	if w.Worker != "wa" || !w.Registered || w.Host != "h1" || w.Pid != 42 || w.KernelVariant != "sse" || w.Stale {
		t.Fatalf("fleet entry = %+v", w)
	}

	// A worker's Run loop registers itself (hello on start) and its
	// lease/push traffic is tallied.
	wk := &Worker{
		URL: srv.URL, Name: "runner", Resolve: resolveOnly(e),
		MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	}
	if _, err := wk.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	view := c.Workers()
	var runner *WorkerInfo
	for i := range view.Workers {
		if view.Workers[i].Worker == "runner" {
			runner = &view.Workers[i]
		}
	}
	if runner == nil || !runner.Registered || runner.Leases != 6 || runner.Pushes != 6 {
		t.Fatalf("runner fleet entry = %+v, want registered with 6 leases and 6 pushes", runner)
	}
}

// TestStaleWorkerLeasesExpireEarly is the heartbeat payoff: a
// registered worker that goes silent past StaleAfter has its leases
// reaped immediately — long before the lease TTL — while a worker that
// never registered (no heartbeat promise) keeps the plain TTL.
func TestStaleWorkerLeasesExpireEarly(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("stale")
	var mu sync.Mutex
	now := time.Unix(5000, 0)
	clock := func() time.Time { mu.Lock(); defer mu.Unlock(); return now }
	advance := func(d time.Duration) { mu.Lock(); now = now.Add(d); mu.Unlock() }

	c := newTestCoord(t, Config{
		Experiments: []harness.Experiment{e}, Store: openStore(t),
		LeaseTTL: time.Hour, Heartbeat: 30 * time.Second, // StaleAfter = 90s
		Clock: clock,
	})
	c.hello(WorkerHello{Worker: "beating"})
	if lr := c.lease("beating"); lr.Status != StatusLease {
		t.Fatalf("registered lease = %q", lr.Status)
	}
	if lr := c.lease("plain"); lr.Status != StatusLease {
		t.Fatalf("unregistered lease = %q", lr.Status)
	}

	// Within StaleAfter nothing expires.
	advance(60 * time.Second)
	c.Reap()
	if n := c.ActiveLeases(); n != 2 {
		t.Fatalf("leases after 60s = %d, want 2", n)
	}

	// Past StaleAfter the silent registered worker's lease expires; the
	// unregistered worker keeps its TTL.
	advance(60 * time.Second) // 120s silent > 90s StaleAfter, << 1h TTL
	view := c.Workers()
	if !view.Workers[0].Stale || view.Workers[1].Stale {
		t.Fatalf("staleness = %+v, want only 'beating' stale", view.Workers)
	}
	c.Reap()
	if n := c.ActiveLeases(); n != 1 {
		t.Fatalf("leases after staleness = %d, want only the unregistered worker's", n)
	}
	snap := c.Snapshot()
	if p := snap.Experiments[0]; p.Leased != 1 || p.Pending != 5 {
		t.Fatalf("progress after stale reap = %+v, want 1 leased / 5 pending", p)
	}

	// A heartbeat un-stales: hello again, lease again, stay within
	// StaleAfter of the last hello — the lease survives reaping.
	c.hello(WorkerHello{Worker: "beating"})
	if lr := c.lease("beating"); lr.Status != StatusLease {
		t.Fatalf("re-lease after heartbeat = %q", lr.Status)
	}
	advance(60 * time.Second)
	c.hello(WorkerHello{Worker: "beating"}) // heartbeat refreshes lastSeen
	advance(60 * time.Second)
	c.Reap()
	if p := c.Snapshot().Experiments[0]; p.Leased != 2 {
		t.Fatalf("progress with live heartbeat = %+v, want both leases alive", p)
	}
}

// TestCellEndpointAndWarm covers the store-warming path: /v1/cell
// serves the exact stored envelope (404 for absent cells, 400 for
// malformed fingerprints), and Warm fills a cold store byte-identically
// from it, counting present/fetched/absent correctly.
func TestCellEndpointAndWarm(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("warm")
	coordStore := openStore(t)
	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: coordStore})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()

	// Push 4 of the 6 cells; the other 2 stay absent upstream.
	for i := 0; i < 4; i++ {
		fp, payload := payloadFor(t, e, i)
		if _, code, msg := c.push(PushRequest{Fingerprint: fp, Payload: payload}); code != 200 {
			t.Fatalf("push %d = %d %s", i, code, msg)
		}
	}

	fp0, payload0 := payloadFor(t, e, 0)
	resp, err := http.Get(srv.URL + "/v1/cell/" + fp0)
	if err != nil {
		t.Fatal(err)
	}
	got := new(bytes.Buffer)
	_, _ = got.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !bytes.Equal(got.Bytes(), payload0) {
		t.Fatalf("GET cell = %d with %d bytes, want 200 with the exact stored envelope", resp.StatusCode, got.Len())
	}
	fp5, _ := payloadFor(t, e, 5)
	if resp, _ := http.Get(srv.URL + "/v1/cell/" + fp5); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET absent cell = %d, want 404", resp.StatusCode)
	}
	for _, bad := range []string{"xyz", strings.Repeat("0", 31), strings.Repeat("A", 32), "../../etc/passwd"} {
		if resp, _ := http.Get(srv.URL + "/v1/cell/" + bad); resp.StatusCode != http.StatusBadRequest && resp.StatusCode != http.StatusNotFound {
			// net/http cleans path traversal to another route (404); raw
			// bad fingerprints must be 400.
			t.Fatalf("GET %q = %d, want 400/404", bad, resp.StatusCode)
		}
	}

	// Warm a cold store: 4 fetched, 2 absent (sweep still running).
	cold := openStore(t)
	st, err := Warm(context.Background(), srv.URL, cold, []harness.Experiment{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetched != 4 || st.Present != 0 || st.Absent != 2 {
		t.Fatalf("first warm = %+v, want 4 fetched / 2 absent", st)
	}
	if _, ok := cold.LoadManifest(e.spec.ID, e.spec.Seed); !ok {
		t.Fatal("warm did not write the grid manifest")
	}

	// Finish the sweep upstream; a second warm fetches only the gap.
	for i := 4; i < 6; i++ {
		fp, payload := payloadFor(t, e, i)
		if _, code, msg := c.push(PushRequest{Fingerprint: fp, Payload: payload}); code != 200 {
			t.Fatalf("push %d = %d %s", i, code, msg)
		}
	}
	st, err = Warm(context.Background(), srv.URL, cold, []harness.Experiment{e}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Fetched != 2 || st.Present != 4 || st.Absent != 0 {
		t.Fatalf("second warm = %+v, want 2 fetched / 4 present", st)
	}

	// The warmed store is byte-identical to the coordinator's.
	for i := 0; i < 6; i++ {
		fp := e.spec.CellKey(e.spec.CellAt(i)).Fingerprint()
		want, _ := coordStore.CellBytesByFingerprint(fp)
		got, ok := cold.CellBytesByFingerprint(fp)
		if !ok || !bytes.Equal(got, want) {
			t.Fatalf("warmed cell %d differs from the coordinator's bytes", i)
		}
	}
	// And a warm run over it recomputes nothing.
	cov := cold.Coverage(resultstore.Manifest{Cells: manifestFPs(e)})
	if !cov.Complete() {
		t.Fatalf("warmed store coverage = %+v, want complete", cov)
	}
}

func manifestFPs(e testExp) []string {
	var fps []string
	for i := 0; i < e.spec.NumCells(); i++ {
		fps = append(fps, e.spec.CellKey(e.spec.CellAt(i)).Fingerprint())
	}
	return fps
}

// TestChaosSweepHealsToByteIdentity is the in-process twin of `make
// chaos-smoke`: a seeded fault plan batters a two-worker sweep across
// four fault kinds and three layers (silent store corruption, server
// 500s, dropped responses, client transport errors, compute delays);
// the sweep still completes; fsck finds and quarantines the damage; a
// second clean round heals it; and the final store is byte-identical
// to an undisturbed local run.
func TestChaosSweepHealsToByteIdentity(t *testing.T) {
	withHarnessState(t)
	e, _ := newTestExp("chaos")

	// Reference: an undisturbed local run into its own store.
	refStore := openStore(t)
	harness.SetStore(refStore)
	harness.Run(e)
	harness.SetStore(nil)
	harness.ClearMemo()

	// Chaos round: four fault kinds across store, server and client.
	chaosStore := openStore(t)
	plan, err := faultline.ParsePlan(strings.Join([]string{
		"seed=7",
		"resultstore.save.temp=corrupt:0.5@3x1", // silent corruption on the 3rd ingest write
		"coord.server.push=http500@2x2",         // transient server failures
		"coord.server.lease=drop@3x1",           // a dropped response mid-protocol
		"coord.client.push=err%0.4x3",           // client transport faults
		"harness.cell.compute=delay:2ms%0.5x4",  // compute jitter (never changes values)
	}, ";"))
	if err != nil {
		t.Fatal(err)
	}
	if err := faultline.Arm(plan); err != nil {
		t.Fatal(err)
	}
	defer faultline.Disarm()

	c := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: chaosStore})
	srv := httptest.NewServer(c.Handler())
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := &Worker{
				URL: srv.URL, Name: fmt.Sprintf("chaos%d", i),
				Resolve: resolveOnly(e), MaxRetries: 8,
				BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
			}
			if _, err := w.Run(context.Background()); err != nil {
				t.Errorf("chaos worker %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	srv.Close()
	// The plan must actually have injected across layers — otherwise
	// this test silently degrades to the clean e2e test.
	injected := map[string]int{}
	for _, ps := range faultline.Stats() {
		injected[ps.Name] = ps.Injected
	}
	faultline.Disarm()
	for _, point := range []string{"resultstore.save.temp", "coord.server.push", "coord.server.lease"} {
		if injected[point] == 0 {
			t.Fatalf("failpoint %s never injected (stats %v) — the chaos plan went soft", point, injected)
		}
	}
	select {
	case <-c.Done():
	default:
		t.Fatal("chaos sweep did not complete")
	}

	// fsck finds the silent corruption and repairs it.
	rep, err := chaosStore.Fsck(resultstore.FsckOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Damage == 0 {
		t.Fatal("chaos plan injected no detectable store damage (corrupt rule never fired?)")
	}
	if rep.Healthy() {
		t.Fatal("pre-repair report claims healthy despite damage")
	}
	rep, err = chaosStore.Fsck(resultstore.FsckOptions{Repair: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Healthy() {
		t.Fatalf("repair left damage: %+v", rep.Findings)
	}

	// Clean round over the repaired store: only the quarantined cells
	// reschedule, and the sweep completes.
	harness.ClearMemo() // the chaos workers memoized every cell in-process
	c2 := newTestCoord(t, Config{Experiments: []harness.Experiment{e}, Store: chaosStore})
	srv2 := httptest.NewServer(c2.Handler())
	defer srv2.Close()
	w := &Worker{
		URL: srv2.URL, Name: "healer", Resolve: resolveOnly(e),
		MaxRetries: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
	}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatalf("heal worker: %v", err)
	}

	// Byte identity with the undisturbed run, cell for cell.
	for i := 0; i < e.spec.NumCells(); i++ {
		fp := e.spec.CellKey(e.spec.CellAt(i)).Fingerprint()
		want, ok := refStore.CellBytesByFingerprint(fp)
		if !ok {
			t.Fatalf("reference store missing cell %d", i)
		}
		got, ok := chaosStore.CellBytesByFingerprint(fp)
		if !ok {
			t.Fatalf("healed store missing cell %d", i)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("cell %d: healed bytes differ from the undisturbed run", i)
		}
	}
}
