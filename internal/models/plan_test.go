package models

import (
	"math"
	"testing"

	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// bitEqual compares tensors bit-for-bit (NaN-safe, distinguishes ±0 —
// stricter than float equality, as the plan contract demands).
func bitEqual(a, b *tensor.Tensor) bool {
	if len(a.Data) != len(b.Data) {
		return false
	}
	for i := range a.Data {
		if math.Float32bits(a.Data[i]) != math.Float32bits(b.Data[i]) {
			return false
		}
	}
	return true
}

// planModels covers every plannable forward topology: plain Sequential
// chains (VGG), residual and SE blocks, concat blocks (Inception, Fire,
// Dense), channel shuffle, depthwise/inverted residuals, ViT attention
// stacks (global and windowed), Conv1d+transformer audio nets, and the
// U-Net skip-connection graph in both norm styles.
var planModels = []string{
	"vgg11", "cifar_resnet20", "se_resnext50", "googlenet", "squeezenet",
	"densenet121", "shufflenet_v2", "mobilenet_v3", "efficientnet_b0",
	"vit_small", "swin_tiny", "wav2vec2_librispeech",
	"unet_carvana", "stable_diffusion_unet",
}

// TestPlannedForwardBitIdentical proves the tentpole contract: a planned
// forward is byte-for-byte the unplanned forward, over several cycles
// (so arena reuse, not just the recording cycle, is exercised).
func TestPlannedForwardBitIdentical(t *testing.T) {
	for _, name := range planModels {
		name := name
		t.Run(name, func(t *testing.T) {
			net, err := Build(name)
			if err != nil {
				t.Fatal(err)
			}
			if !net.Plannable() {
				t.Fatalf("%s: expected plannable", name)
			}
			batches := net.Data.Batches()
			if batches > 3 {
				batches = 3
			}
			want := make([]*tensor.Tensor, batches)
			for i := 0; i < batches; i++ {
				want[i] = net.Run(net.Data.Batch(i)).Clone()
			}
			s0 := net.Data.Batch(0)
			plan := nn.Compile(net.Root(), s0.X.Shape...)
			net.InstallPlan(plan)
			defer net.InstallPlan(nil)
			for cycle := 0; cycle < 3; cycle++ {
				for i := 0; i < batches; i++ {
					got := net.Run(net.Data.Batch(i))
					if !bitEqual(got, want[i]) {
						t.Fatalf("%s: planned forward differs from unplanned (cycle %d batch %d)", name, cycle, i)
					}
				}
			}
		})
	}
}

// TestPlanSteadyStateZeroAlloc checks the perf contract on a whole
// model: after the recording cycles, a planned forward performs no heap
// allocations.
func TestPlanSteadyStateZeroAlloc(t *testing.T) {
	for _, name := range []string{"vgg11", "cifar_resnet20", "vit_small"} {
		net, err := Build(name)
		if err != nil {
			t.Fatal(err)
		}
		s := net.Data.Batch(0)
		plan := nn.Compile(net.Root(), s.X.Shape...)
		net.InstallPlan(plan)
		// One more warm forward: slabs grow lazily at Reset, so the
		// first post-Compile forward may still allocate once.
		net.Run(s)
		avg := testing.AllocsPerRun(5, func() { net.Run(s) })
		net.InstallPlan(nil)
		if avg != 0 {
			t.Errorf("%s: planned forward allocates %.1f times per run, want 0", name, avg)
		}
	}
}

// TestInstallPlanRestoresUnplanned checks nil uninstall falls back to
// the original fwd closure.
func TestInstallPlanRestoresUnplanned(t *testing.T) {
	net, err := Build("cifar_resnet20")
	if err != nil {
		t.Fatal(err)
	}
	s := net.Data.Batch(0)
	want := net.Run(s).Clone()
	plan := nn.Compile(net.Root(), s.X.Shape...)
	net.InstallPlan(plan)
	net.Run(s)
	net.InstallPlan(nil)
	got := net.Run(s)
	if !bitEqual(got, want) {
		t.Fatal("uninstalling plan changed outputs")
	}
	if plan.Footprint() == 0 {
		t.Fatal("compiled plan reports zero footprint")
	}
}
