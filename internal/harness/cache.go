// Result caching: sweep grids are memoized per process (table2, fig4
// and fig5 all consume the same 75-model sweep) and, when a store is
// configured, persisted to disk so later fp8bench invocations reuse
// them across processes. Cache entries are keyed by content address —
// experiment id, model set, recipe set, seed and schema version — so a
// stale store can only miss, never corrupt a report.

package harness

import (
	"fmt"
	"os"
	"sync"

	"fp8quant/internal/evalx"
	"fp8quant/internal/resultstore"
)

var (
	cacheMu sync.Mutex
	// store is the optional disk-backed result store (nil = disabled).
	store *resultstore.Store
	// memo is the in-process grid cache, keyed by key fingerprint.
	memo = map[string][][]evalx.Result{}
)

// SetStore installs (or, with nil, removes) the persistent result
// store consulted by sweep experiments. Call before running
// experiments; grids already memoized in-process are kept.
func SetStore(s *resultstore.Store) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	store = s
}

// Store returns the configured persistent result store (nil if none).
func Store() *resultstore.Store {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	return store
}

// ClearMemo drops the in-process grid cache (the disk store is
// untouched). Tests use it to force store round trips; long-lived
// embedders can use it to release sweep memory.
func ClearMemo() {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	memo = map[string][][]evalx.Result{}
}

// cachedGrid returns the grid for the key, trying the in-process memo,
// then the disk store, then computing it (and persisting the result).
// Concurrent callers with the same key may compute twice; both arrive
// at identical grids, so last-write-wins is safe.
func cachedGrid(k resultstore.Key, compute func() [][]evalx.Result) [][]evalx.Result {
	fp := k.Fingerprint()
	cacheMu.Lock()
	g, ok := memo[fp]
	s := store
	cacheMu.Unlock()
	if ok {
		return g
	}
	if g, ok := s.LoadGrid(k); ok {
		cacheMu.Lock()
		memo[fp] = g
		cacheMu.Unlock()
		return g
	}
	g = compute()
	if err := s.SaveGrid(k, g); err != nil {
		// A failed persist (full/unwritable cache dir) must not go
		// unnoticed: without it every invocation repays the full sweep.
		fmt.Fprintf(os.Stderr, "warning: result store write failed: %v\n", err)
	}
	cacheMu.Lock()
	memo[fp] = g
	cacheMu.Unlock()
	return g
}
