package coord

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"fp8quant/internal/harness"
)

// TestWorkerRetryBudgetExhausted: a coordinator that never comes back
// (connection refused) burns the bounded retry budget, then the worker
// hard-fails instead of spinning forever.
func TestWorkerRetryBudgetExhausted(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	url := srv.URL
	srv.Close() // nothing listens here anymore: every dial is refused
	w := &Worker{
		URL: url, Name: "orphan", MaxRetries: 2,
		BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		Resolve: resolveOnly(),
	}
	_, err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "retry budget exhausted") {
		t.Fatalf("err = %v, want retry budget exhausted", err)
	}
}

// TestWorkerRetriesTransient5xx: 5xx responses are transient — the
// worker backs off and retries, and succeeds once the server recovers.
func TestWorkerRetriesTransient5xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/workers" {
			// Heartbeat hellos are uncounted: this test counts leases. A
			// 404 also exercises the worker's tolerance of coordinators
			// predating worker registration.
			http.NotFound(w, r)
			return
		}
		if calls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(LeaseResponse{Status: StatusDone})
	}))
	defer srv.Close()
	w := &Worker{
		URL: srv.URL, Name: "patient", MaxRetries: 5,
		BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		Resolve: resolveOnly(),
	}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatalf("worker did not survive transient 5xx: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d calls, want 3 (two 503s then success)", got)
	}
}

// TestWorkerHardFailsOn4xx: protocol errors are not retried — the
// identical request cannot succeed, so the worker fails on the first
// response.
func TestWorkerHardFailsOn4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/workers" {
			http.NotFound(w, r) // heartbeats are uncounted; leases are the test
			return
		}
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(errorResponse{Error: "you sent nonsense"})
	}))
	defer srv.Close()
	w := &Worker{
		URL: srv.URL, Name: "confused", MaxRetries: 5,
		BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond,
		Resolve: resolveOnly(),
	}
	_, err := w.Run(context.Background())
	if err == nil || !strings.Contains(err.Error(), "you sent nonsense") {
		t.Fatalf("err = %v, want the server's 4xx message", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d calls, want 1 (4xx is never retried)", got)
	}
}

// TestWorkerRefusesScheduleSkew: a lease whose fingerprint does not
// match the worker's own spec-derived address is pushed back as a
// failure, never computed — two builds disagreeing on the schedule
// must fail loudly.
func TestWorkerRefusesScheduleSkew(t *testing.T) {
	withHarnessState(t)
	e, computes := newTestExp("skew")
	var w Worker
	w.Name = "skewed"
	w.Resolve = resolveOnly(e)
	w.defaults()
	var stats WorkerStats
	push := w.computeLease(Lease{
		ID: "l-1", Exp: "skew", Index: 0, Key: "model=ma,recipe=r1",
		Fingerprint: strings.Repeat("0", 32),
	}, &stats)
	if push.Err == "" || !strings.Contains(push.Err, "fingerprint mismatch") {
		t.Fatalf("push.Err = %q, want fingerprint mismatch", push.Err)
	}
	if computes.Load() != 0 {
		t.Fatal("worker computed a cell under a mismatched fingerprint")
	}
	// Unknown experiment and out-of-range index fail the same way.
	if p := w.computeLease(Lease{Exp: "nope", Index: 0}, &stats); !strings.Contains(p.Err, "does not know experiment") {
		t.Fatalf("unknown-exp push.Err = %q", p.Err)
	}
	if p := w.computeLease(Lease{Exp: "skew", Index: 99}, &stats); !strings.Contains(p.Err, "out of range") {
		t.Fatalf("out-of-range push.Err = %q", p.Err)
	}
}

// TestWorkerBackoffBounds: backoff grows exponentially from BaseDelay,
// caps at MaxDelay, and jitter treats the computed delay as a floor —
// every jittered delay lies in [d, 3d/2). The lower bound is the
// regression guard: jitter once spread over [d/2, d), which let
// workers sleep less than a server-requested RetryMs.
func TestWorkerBackoffBounds(t *testing.T) {
	w := &Worker{Name: "jitter", BaseDelay: 100 * time.Millisecond, MaxDelay: time.Second}
	w.defaults()
	for attempt := 1; attempt <= 8; attempt++ {
		raw := w.BaseDelay << uint(attempt-1)
		if raw > w.MaxDelay || raw <= 0 {
			raw = w.MaxDelay
		}
		for i := 0; i < 20; i++ {
			got := w.backoff(attempt)
			if got < raw || got >= raw+raw/2 {
				t.Fatalf("attempt %d: backoff %v outside [%v, %v)", attempt, got, raw, raw+raw/2)
			}
		}
	}
}

// TestWorkerWaitHonorsServerRetryMs: a StatusWait response's RetryMs is
// a floor — the worker must not come back for another lease before it
// elapses. (The old jitter halved the server's delay half the time.)
func TestWorkerWaitHonorsServerRetryMs(t *testing.T) {
	const retryMs = 80
	var calls atomic.Int64
	var firstLease, secondLease time.Time
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/workers" {
			http.NotFound(w, r) // heartbeats are uncounted; leases are the test
			return
		}
		switch calls.Add(1) {
		case 1:
			firstLease = time.Now()
			_ = json.NewEncoder(w).Encode(LeaseResponse{Status: StatusWait, RetryMs: retryMs})
		default:
			secondLease = time.Now()
			_ = json.NewEncoder(w).Encode(LeaseResponse{Status: StatusDone})
		}
	}))
	defer srv.Close()
	w := &Worker{URL: srv.URL, Name: "waiter", Resolve: resolveOnly()}
	if _, err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if waited := secondLease.Sub(firstLease); waited < retryMs*time.Millisecond {
		t.Fatalf("worker re-leased after %v, want ≥ %v (server RetryMs is a floor)", waited, retryMs*time.Millisecond)
	}
}

// TestRealGridSubSweep drives a real registered experiment (a one-model
// slice of table3) through the coordinator with two workers and checks
// the pushed store serves a warm filtered run with zero recomputation.
// The full-grid proof lives in `make coord-smoke`; this keeps a real
// RunCell path (model build, quantization, eval) under `go test`.
func TestRealGridSubSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real model evaluation in -short mode")
	}
	withHarnessState(t)
	e, ok := harness.Get("table3")
	if !ok {
		t.Fatal("table3 not registered")
	}
	filter, err := harness.ParseFilter("model=resnet50")
	if err != nil {
		t.Fatal(err)
	}
	coordStore := openStore(t)
	c := newTestCoord(t, Config{
		Experiments: []harness.Experiment{e}, Filter: filter, Store: coordStore,
	})
	srv := httptest.NewServer(c.Handler())
	defer srv.Close()
	for i := 0; i < 2; i++ {
		// Sequential workers: real cells share the process-global model
		// reference cache, and the point here is the protocol + store
		// path, not in-process parallelism (covered by the e2e test).
		w := &Worker{
			URL: srv.URL, Name: "real", MaxRetries: 3,
			BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond,
		}
		if _, err := w.Run(context.Background()); err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	snap := c.Snapshot()
	if !snap.Complete || snap.Experiments[0].Done != 4 {
		t.Fatalf("snapshot = %+v, want the 4 resnet50 cells done", snap.Experiments[0])
	}
	// Warm filtered run against the pushed store: everything is served
	// from it.
	harness.ClearMemo()
	harness.SetStore(coordStore)
	before := coordStore.Stats()
	if _, _, err := harness.RunGrid(e, filter, harness.Shard{}); err != nil {
		t.Fatal(err)
	}
	after := coordStore.Stats()
	if misses := after.Misses - before.Misses; misses != 0 {
		t.Fatalf("warm filtered run had %d store misses, want 0", misses)
	}
}
