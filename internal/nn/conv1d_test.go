package nn

import (
	"testing"

	"fp8quant/internal/tensor"
)

func TestConv1dIdentity(t *testing.T) {
	c := NewConv1d(1, 1, 1, 1, 0)
	c.W.Data[0] = 1
	x := tensor.New(1, 1, 8)
	x.FillNormal(tensor.NewRNG(1), 0, 1)
	y := c.Forward(x)
	for i := range x.Data {
		if y.Data[i] != x.Data[i] {
			t.Fatal("identity conv1d mismatch")
		}
	}
}

func TestConv1dStride(t *testing.T) {
	c := NewConv1d(2, 4, 5, 4, 2)
	x := tensor.New(2, 2, 64)
	y := c.Forward(x)
	if y.Shape[0] != 2 || y.Shape[1] != 4 || y.Shape[2] != c.OutSize(64) {
		t.Fatalf("shape %v", y.Shape)
	}
	if c.OutSize(64) != 16 {
		t.Errorf("OutSize(64) = %d, want 16", c.OutSize(64))
	}
}

func TestConv1dSumKernel(t *testing.T) {
	c := NewConv1d(1, 1, 3, 1, 0)
	c.W.Data[0], c.W.Data[1], c.W.Data[2] = 1, 1, 1
	x := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 1, 4)
	y := c.Forward(x)
	want := []float32{6, 9}
	for i := range want {
		if y.Data[i] != want[i] {
			t.Errorf("y[%d] = %v, want %v", i, y.Data[i], want[i])
		}
	}
}

func TestConv1dQuantHooks(t *testing.T) {
	c := NewConv1d(1, 1, 1, 1, 0)
	c.W.Data[0] = 2
	called := false
	c.QS.Observe = func([]float32) { called = true }
	x := tensor.New(1, 1, 4)
	x.Fill(1)
	c.Forward(x)
	if !called {
		t.Error("observer not invoked")
	}
	c.QS.Input = func(dst, src []float32) {
		for i := range dst {
			dst[i] = 0
		}
	}
	y := c.Forward(x)
	if y.Data[0] != 0 {
		t.Error("input quant hook not applied")
	}
}

func TestConv1dParametricInterface(t *testing.T) {
	c := NewConv1d(2, 3, 3, 1, 1)
	var p Parametric = c
	if p.WeightTensor() != c.W || p.OutChannelDim() != 0 {
		t.Error("Parametric contract violated")
	}
	var q Quantizable = c
	if q.Q() != &c.QS {
		t.Error("Quantizable contract violated")
	}
}
