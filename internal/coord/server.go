// The coordinator: a long-running control plane that owns a grid
// schedule end to end. It derives the cell set from the scheduled
// experiments' specs (deduplicated across experiments sharing a grid,
// seeded done from whatever the store already holds, so restarting a
// coordinator over a half-full store schedules only the missing
// cells), leases cells to pull-based workers most-expensive-first via
// the learned cost model, ingests pushed payloads under Store.Merge's
// exact conflict rules, and publishes live coverage over a long-poll
// endpoint. All state lives behind one mutex; handlers are thin.
//
// Wall-clock use (lease deadlines, cost observations) is confined to
// this control plane and never reaches RunCell — cell payloads are
// computed by the same pure harness path as local runs and stay
// byte-identical; the clock only decides *when* work is re-queued,
// never *what* a cell contains.

package coord

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"fp8quant/internal/faultline"
	"fp8quant/internal/harness"
	"fp8quant/internal/resultstore"
)

// Config configures a Coordinator.
type Config struct {
	// Experiments are the grid experiments to schedule. Scalar (axis-
	// less) experiments contribute no cells and are skipped.
	Experiments []harness.Experiment
	// Filter optionally restricts every grid to matching cells (same
	// semantics as fp8bench -filter). Experiments the filter matches no
	// cell of are scheduled empty.
	Filter harness.Filter
	// Store receives pushed payloads and seeds already-done cells.
	// Required.
	Store *resultstore.Store
	// LeaseTTL is how long a worker may hold a cell before the lease
	// expires and the cell requeues. Default 5m — generous against the
	// zoo's slowest cells, small against a lost shard.
	LeaseTTL time.Duration
	// CostSidecar names the cost-model sidecar file in the store.
	// Default CostSidecarName.
	CostSidecar string
	// MaxExpiries bounds how often one cell may time out before it is
	// declared failed (a cell that keeps killing workers should stop
	// the sweep from spinning). Default 3.
	MaxExpiries int
	// WaitRetry is the retry hint handed to workers when every pending
	// cell is leased out. Default 1s.
	WaitRetry time.Duration
	// Heartbeat is how often registered workers are asked to re-hello
	// (sent back in WorkerAck). Default 15s.
	Heartbeat time.Duration
	// StaleAfter is how long a *registered* worker may be silent before
	// it is declared stale and its leases expire early — a crashed
	// worker then costs one missed heartbeat window instead of a full
	// lease TTL. Workers that never sent a hello (no heartbeat loop)
	// keep the plain TTL. Default 3×Heartbeat.
	StaleAfter time.Duration
	// Clock injects time for tests. Default time.Now.
	Clock func() time.Time
}

// Coordinator owns the schedule state. Create with New, expose with
// Handler, and drive shutdown with Drain + PersistCost.
type Coordinator struct {
	cfg  Config
	cost *CostModel

	mu       sync.Mutex
	items    map[string]*workItem        // by fingerprint
	specs    map[string]harness.GridSpec // by grid id, for manifest provenance
	exps     []*expSchedule              // in configured order
	pending  []*workItem
	dirty    bool // pending needs re-sorting against fresh estimates
	leases   map[string]*leaseRec
	seq      int64
	gen      int64
	draining bool
	notify   chan struct{}
	done     chan struct{}
	complete bool
	workers  map[string]*workerRec
}

// workerRec tracks one worker's traffic. Every lease/push touches it;
// only an explicit hello marks it registered (and thus eligible for
// stale detection — a worker with no heartbeat loop must not be
// reaped for never heartbeating).
type workerRec struct {
	name, host, variant string
	pid                 int
	lastSeen            time.Time
	registered          bool
	leases, pushes      int
}

// New builds the schedule and seeds it from the store. The store's
// grid manifests are written up front (full schedules only, like a
// local run), so -coverage and merges can reason about the sweep while
// it is still running.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("coord: a result store is required (pushed cells have nowhere to go)")
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = 5 * time.Minute
	}
	if cfg.CostSidecar == "" {
		cfg.CostSidecar = CostSidecarName
	}
	if cfg.MaxExpiries <= 0 {
		cfg.MaxExpiries = 3
	}
	if cfg.WaitRetry <= 0 {
		cfg.WaitRetry = time.Second
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 15 * time.Second
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 3 * cfg.Heartbeat
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	c := &Coordinator{
		cfg:     cfg,
		cost:    LoadCostModel(cfg.Store, cfg.CostSidecar),
		items:   map[string]*workItem{},
		specs:   map[string]harness.GridSpec{},
		leases:  map[string]*leaseRec{},
		workers: map[string]*workerRec{},
		notify:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	for _, e := range cfg.Experiments {
		spec := e.Spec()
		if err := spec.ValidateFilter(cfg.Filter); err != nil && spec.NumCells() > 0 {
			return nil, fmt.Errorf("coord: %s: %w", e.ID(), err)
		}
		sel := spec.Select(cfg.Filter)
		es := &expSchedule{id: e.ID(), grid: spec.ID}
		for _, idx := range sel {
			cell := spec.CellAt(idx)
			k := spec.CellKey(cell)
			fp := k.Fingerprint()
			it, ok := c.items[fp]
			if !ok {
				it = &workItem{
					exp: e.ID(), grid: spec.ID, index: idx,
					key: spec.KeyString(cell), fp: fp, axes: k.Cell,
				}
				c.items[fp] = it
				c.pending = append(c.pending, it)
			}
			es.items = append(es.items, it)
		}
		c.exps = append(c.exps, es)
		// Record the full schedule for coverage tooling; a filtered
		// sub-schedule is not the grid's schedule and must not
		// overwrite it (same rule as the local executor).
		if spec.NumCells() > 0 && len(sel) == spec.NumCells() {
			saveManifest(cfg.Store, spec)
		}
		if spec.NumCells() > 0 {
			c.specs[spec.ID] = spec
		}
	}
	c.seedFromStore()
	c.mu.Lock()
	c.checkCompleteLocked()
	c.mu.Unlock()
	return c, nil
}

// saveManifest records a grid's full schedule, preserving an existing
// manifest whose schedule already matches (it may carry shard
// provenance from earlier distributed runs).
func saveManifest(s *resultstore.Store, spec harness.GridSpec) {
	m := harness.ManifestFor(spec)
	if old, ok := s.LoadManifest(spec.ID, spec.Seed); ok && old.SameSchedule(m) {
		return
	}
	// A failed manifest write only degrades coverage reporting; pushed
	// cells are still content-addressed and safe.
	_ = s.SaveManifest(m)
}

// seedFromStore marks every scheduled cell the store already holds as
// done, so a restarted coordinator (or one pointed at a merged store)
// leases only the missing cells.
func (c *Coordinator) seedFromStore() {
	c.mu.Lock()
	defer c.mu.Unlock()
	var fps []string
	for _, it := range c.pending {
		fps = append(fps, it.fp)
	}
	cov := c.cfg.Store.Coverage(resultstore.Manifest{Cells: fps})
	missing := map[int]bool{}
	for _, i := range cov.Missing {
		missing[i] = true
	}
	var still []*workItem
	for i, it := range c.pending {
		if missing[i] {
			still = append(still, it)
		} else {
			it.state = stateDone
		}
	}
	c.pending = still
	c.dirty = true
}

// Handler returns the coordinator's HTTP API.
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/lease", c.handleLease)
	mux.HandleFunc("/v1/push", c.handlePush)
	mux.HandleFunc("/v1/workers", c.handleWorkers)
	mux.HandleFunc("/v1/cell/", c.handleCell)
	mux.HandleFunc("/v1/progress", c.handleProgress)
	mux.HandleFunc("/v1/coverage", c.handleCoverage)
	mux.HandleFunc("/v1/healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok\n")
	})
	return mux
}

// inject consults the "coord.server.<point>" failpoint. An ErrDrop
// rule aborts the connection without a response (http.ErrAbortHandler
// panics are swallowed silently by net/http — the client sees EOF);
// any other injected error answers 500, which workers treat as
// transient. Reports whether the handler should return.
func inject(w http.ResponseWriter, point string) bool {
	err := faultline.Hit("coord.server." + point)
	if err == nil {
		return false
	}
	if errors.Is(err, faultline.ErrDrop) {
		panic(http.ErrAbortHandler)
	}
	writeJSON(w, http.StatusInternalServerError, errorResponse{err.Error()})
	return true
}

// bumpLocked advances the generation and wakes long-pollers.
func (c *Coordinator) bumpLocked() {
	c.gen++
	close(c.notify)
	c.notify = make(chan struct{})
}

// changed returns a channel closed at the next state change.
func (c *Coordinator) changed() <-chan struct{} {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.notify
}

// Done is closed once every scheduled cell is done or failed.
func (c *Coordinator) Done() <-chan struct{} { return c.done }

// checkCompleteLocked closes the done channel when nothing is left.
func (c *Coordinator) checkCompleteLocked() {
	if c.complete {
		return
	}
	for _, it := range c.items {
		if it.state != stateDone && it.state != stateFailed {
			return
		}
	}
	c.complete = true
	close(c.done)
}

// reapLocked expires overdue leases: the cell requeues (or fails after
// MaxExpiries timeouts), so a crashed worker costs one timeout.
// Leases held by a registered worker that has gone stale (silent past
// StaleAfter) expire early — the heartbeat's whole point — while
// unregistered workers keep the plain TTL. Leases are processed in
// sorted id order so requeue order (and any resulting failure
// messages) is deterministic.
func (c *Coordinator) reapLocked(now time.Time) {
	ids := make([]string, 0, len(c.leases))
	for id := range c.leases {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	changedAny := false
	for _, id := range ids {
		l := c.leases[id]
		if now.Before(l.deadline) && !c.workerStaleLocked(l.worker, now) {
			continue
		}
		delete(c.leases, id)
		changedAny = true
		it := l.item
		if it.state != stateLeased {
			continue // a late push already completed the cell
		}
		it.expiries++
		if it.expiries > c.cfg.MaxExpiries {
			it.state = stateFailed
			it.failMsg = fmt.Sprintf("lease expired %d times (workers keep dying on this cell)", it.expiries)
		} else {
			it.state = statePending
			c.pending = append(c.pending, it)
			c.dirty = true
		}
	}
	if changedAny {
		c.bumpLocked()
		c.checkCompleteLocked()
	}
}

// Reap expires overdue leases now; fp8coord runs it on a ticker so
// progress advances even when no worker traffic arrives.
func (c *Coordinator) Reap() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.cfg.Clock())
}

// workerStaleLocked reports whether a registered worker has been
// silent past StaleAfter. Workers known only from lease/push traffic
// never go stale — they did not promise heartbeats.
func (c *Coordinator) workerStaleLocked(name string, now time.Time) bool {
	rec, ok := c.workers[name]
	return ok && rec.registered && now.Sub(rec.lastSeen) > c.cfg.StaleAfter
}

// touchWorkerLocked records traffic from a worker, creating an
// unregistered record on first contact.
func (c *Coordinator) touchWorkerLocked(name string) *workerRec {
	rec, ok := c.workers[name]
	if !ok {
		rec = &workerRec{name: name}
		c.workers[name] = rec
	}
	rec.lastSeen = c.cfg.Clock()
	return rec
}

// hello registers (or heartbeats) a worker.
func (c *Coordinator) hello(h WorkerHello) WorkerAck {
	c.mu.Lock()
	defer c.mu.Unlock()
	rec := c.touchWorkerLocked(h.Worker)
	rec.registered = true
	if h.Host != "" {
		rec.host = h.Host
	}
	if h.Pid != 0 {
		rec.pid = h.Pid
	}
	if h.KernelVariant != "" {
		rec.variant = h.KernelVariant
	}
	return WorkerAck{HeartbeatMs: c.cfg.Heartbeat.Milliseconds()}
}

// Workers returns the fleet view, sorted by worker name.
func (c *Coordinator) Workers() WorkersSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	names := make([]string, 0, len(c.workers))
	for name := range c.workers {
		names = append(names, name)
	}
	sort.Strings(names)
	var snap WorkersSnapshot
	for _, name := range names {
		rec := c.workers[name]
		snap.Workers = append(snap.Workers, WorkerInfo{
			Worker: rec.name, Host: rec.host, Pid: rec.pid,
			KernelVariant: rec.variant, Registered: rec.registered,
			IdleMs: now.Sub(rec.lastSeen).Milliseconds(),
			Stale:  c.workerStaleLocked(name, now),
			Leases: rec.leases, Pushes: rec.pushes,
		})
	}
	return snap
}

// Drain puts the coordinator into shutdown: new lease requests are
// refused (workers exit after pushing in-flight work) while pushes,
// progress and coverage keep serving.
func (c *Coordinator) Drain() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.draining {
		c.draining = true
		c.bumpLocked()
	}
}

// ActiveLeases reports the outstanding lease count (drain waits on it).
func (c *Coordinator) ActiveLeases() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.cfg.Clock())
	return len(c.leases)
}

// PersistCost writes the learned cost model to its store sidecar.
func (c *Coordinator) PersistCost() error {
	return c.cost.Persist(c.cfg.Store, c.cfg.CostSidecar)
}

// Cost exposes the learned model (estimates drive lease order; tests
// and fp8coord's summary read it).
func (c *Coordinator) Cost() *CostModel { return c.cost }

// FailedCells returns "exp cell: reason" lines for permanently failed
// cells, in schedule order.
func (c *Coordinator) FailedCells() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, es := range c.exps {
		for _, it := range es.items {
			if it.state == stateFailed {
				out = append(out, fmt.Sprintf("%s %s: %s", es.id, it.key, it.failMsg))
			}
		}
	}
	return out
}

// Snapshot returns the current progress view (reaping first, so an
// expired lease is visible to pollers without worker traffic).
func (c *Coordinator) Snapshot() ProgressSnapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reapLocked(c.cfg.Clock())
	snap := ProgressSnapshot{Gen: c.gen, Draining: c.draining, Complete: c.complete}
	for _, es := range c.exps {
		snap.Experiments = append(snap.Experiments, es.progress())
	}
	return snap
}

// AwaitChange blocks until the state generation exceeds gen or the
// timeout elapses, returning the snapshot either way — the in-process
// twin of the long-poll endpoint, used by fp8coord's progress logger.
func (c *Coordinator) AwaitChange(gen int64, timeout time.Duration) ProgressSnapshot {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := c.changed()
		snap := c.Snapshot()
		if snap.Gen > gen {
			return snap
		}
		select {
		case <-ch:
		case <-deadline.C:
			return c.Snapshot()
		}
	}
}

// lease grants the most expensive pending cell.
func (c *Coordinator) lease(worker string) LeaseResponse {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := c.cfg.Clock()
	c.touchWorkerLocked(worker)
	c.reapLocked(now)
	if c.complete {
		return LeaseResponse{Status: StatusDone}
	}
	if c.draining {
		return LeaseResponse{Status: StatusDraining}
	}
	if len(c.pending) == 0 {
		return LeaseResponse{Status: StatusWait, RetryMs: c.cfg.WaitRetry.Milliseconds()}
	}
	if c.dirty {
		sortPending(c.pending, c.cost)
		c.dirty = false
	}
	it := c.pending[0]
	c.pending = c.pending[1:]
	it.state = stateLeased
	c.workers[worker].leases++
	c.seq++
	id := fmt.Sprintf("l-%d", c.seq)
	c.leases[id] = &leaseRec{id: id, item: it, worker: worker, deadline: now.Add(c.cfg.LeaseTTL)}
	c.bumpLocked()
	return LeaseResponse{Status: StatusLease, Lease: &Lease{
		ID: id, Exp: it.exp, Index: it.index, Key: it.key,
		Fingerprint: it.fp, TTLMs: c.cfg.LeaseTTL.Milliseconds(),
	}}
}

// push ingests one completed (or failed) cell. Pushes are keyed by
// fingerprint, not lease: a push arriving after its lease expired is
// still good work and is accepted (idempotently, if another worker got
// there first) — the lease only bounds how long the coordinator waits
// before rescheduling. A non-"" msg describes the rejection.
func (c *Coordinator) push(req PushRequest) (PushResponse, int, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.touchWorkerLocked(req.Worker).pushes++
	it, ok := c.items[req.Fingerprint]
	if !ok {
		return PushResponse{}, http.StatusNotFound, fmt.Sprintf("push rejected for cell %s", req.Fingerprint)
	}
	// The lease is finished on every settling outcome (accepted work,
	// recorded failure, permanent conflict) — but deliberately NOT on a
	// transient store failure, where the worker will retry the push: if
	// it dies instead, the still-tracked lease expires and requeues the
	// cell rather than stranding it leased forever.
	finishLease := func() {
		if l, ok := c.leases[req.LeaseID]; ok && l.item == it {
			delete(c.leases, req.LeaseID)
		}
	}
	defer func() {
		c.bumpLocked()
		c.checkCompleteLocked()
	}()
	if req.Err != "" {
		finishLease()
		if it.state != stateDone {
			it.state = stateFailed
			it.failMsg = req.Err
		}
		return PushResponse{Status: PushFailedRecorded}, http.StatusOK, ""
	}
	// Variant provenance gates the ingest: a freshly computed cell from
	// a different GEMM tier than the store's recorded one is refused
	// before its bytes land, so a mixed-hardware fleet fails at push
	// time instead of poisoning the store.
	if req.Computed && req.KernelVariant != "" {
		if spec, ok := c.specs[it.grid]; ok {
			if err := stampVariant(c.cfg.Store, spec, req.KernelVariant); err != nil {
				finishLease()
				return PushResponse{}, http.StatusConflict, err.Error()
			}
		}
	}
	status, err := c.cfg.Store.IngestCell(req.Fingerprint, req.Payload)
	if resultstore.IsCellConflict(err) || resultstore.IsBadPayload(err) {
		// Permanent rejections — a differing-valid-payload conflict
		// (fingerprint collision or nondeterministic cell) or an invalid
		// envelope — surface as 409 so the worker fails loudly instead of
		// retrying bytes that can never land.
		finishLease()
		return PushResponse{}, http.StatusConflict, err.Error()
	}
	if err != nil {
		// A store I/O failure (full disk, torn write, injected fault) is
		// the coordinator's problem, not the payload's: answer 500 so the
		// worker retries the identical push once the store recovers.
		return PushResponse{}, http.StatusInternalServerError,
			fmt.Sprintf("store ingest failed for cell %s: %v", req.Fingerprint, err)
	}
	finishLease()
	if it.state != stateDone {
		it.state = stateDone
	}
	if req.Computed && req.DurationMs > 0 {
		c.cost.Observe(req.Fingerprint, it.axes, time.Duration(req.DurationMs*float64(time.Millisecond)))
		// Persist opportunistically so a killed coordinator keeps its
		// learning; the write is atomic and tiny.
		_ = c.cost.Persist(c.cfg.Store, c.cfg.CostSidecar)
		c.dirty = true
	}
	if status == resultstore.IngestIdentical {
		return PushResponse{Status: PushIdentical}, http.StatusOK, ""
	}
	return PushResponse{Status: PushStored}, http.StatusOK, ""
}

// stampVariant unions a worker-reported kernel tier into the grid's
// manifest, mirroring the local executor's provenance rule (only fresh
// computes stamp; warm traffic leaves manifest bytes untouched) and
// Store.Merge's mixing rule: a second distinct tier is an error (pin
// FP8_KERNEL on every worker to run a sweep on mixed hardware).
func stampVariant(s *resultstore.Store, spec harness.GridSpec, variant string) error {
	m, ok := s.LoadManifest(spec.ID, spec.Seed)
	if !ok {
		return nil
	}
	merged := resultstore.UnionVariants(m.KernelVariants, []string{variant})
	if len(merged) > 1 {
		return fmt.Errorf("kernel variant %q conflicts with the store's recorded %v for grid %s: a sweep must stay on one tier (set FP8_KERNEL on every worker)",
			variant, m.KernelVariants, spec.ID)
	}
	if len(merged) == len(m.KernelVariants) {
		return nil
	}
	m.KernelVariants = merged
	// A failed manifest write only degrades provenance reporting; the
	// cell payloads are still content-addressed and safe.
	_ = s.SaveManifest(m)
	return nil
}

// ---- HTTP plumbing ----

func writeJSON(w http.ResponseWriter, code int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	if inject(w, "lease") {
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad lease request: " + err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, c.lease(req.Worker))
}

func (c *Coordinator) handlePush(w http.ResponseWriter, r *http.Request) {
	if inject(w, "push") {
		return
	}
	if r.Method != http.MethodPost {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"POST only"})
		return
	}
	var req PushRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad push request: " + err.Error()})
		return
	}
	resp, code, msg := c.push(req)
	if code != http.StatusOK {
		writeJSON(w, code, errorResponse{msg})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleWorkers registers heartbeating workers (POST) and serves the
// fleet view (GET).
func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	if inject(w, "workers") {
		return
	}
	switch r.Method {
	case http.MethodPost:
		var h WorkerHello
		if err := json.NewDecoder(r.Body).Decode(&h); err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{"bad hello: " + err.Error()})
			return
		}
		if h.Worker == "" {
			writeJSON(w, http.StatusBadRequest, errorResponse{"hello without a worker name"})
			return
		}
		writeJSON(w, http.StatusOK, c.hello(h))
	case http.MethodGet:
		writeJSON(w, http.StatusOK, c.Workers())
	default:
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET or POST only"})
	}
}

// cellFpPattern is the shape of a cell fingerprint in /v1/cell/<fp>.
var cellFpPattern = regexp.MustCompile(`^[0-9a-f]{32}$`)

// handleCell serves raw stored cell envelopes by fingerprint, so a
// worker with a cold local store can warm its memo from the
// coordinator instead of needing a shared filesystem. 404 means the
// coordinator's store does not hold a valid entry for that cell (yet).
func (c *Coordinator) handleCell(w http.ResponseWriter, r *http.Request) {
	if inject(w, "cell") {
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	fp := strings.TrimPrefix(r.URL.Path, "/v1/cell/")
	if !cellFpPattern.MatchString(fp) {
		writeJSON(w, http.StatusBadRequest, errorResponse{"bad cell fingerprint"})
		return
	}
	b, ok := c.cfg.Store.CellBytesByFingerprint(fp)
	if !ok {
		writeJSON(w, http.StatusNotFound, errorResponse{"cell not in store"})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(b)
}

// handleProgress long-polls: with ?gen=N it blocks until the state
// generation exceeds N (or timeout_ms elapses), so a watcher gets an
// update per state change instead of hammering the endpoint.
func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	if inject(w, "progress") {
		return
	}
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	gen := int64(-1)
	if v := r.URL.Query().Get("gen"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorResponse{"bad gen: " + err.Error()})
			return
		}
		gen = n
	}
	timeout := 30 * time.Second
	if v := r.URL.Query().Get("timeout_ms"); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil || n < 0 {
			writeJSON(w, http.StatusBadRequest, errorResponse{"bad timeout_ms"})
			return
		}
		timeout = time.Duration(n) * time.Millisecond
		if timeout > 2*time.Minute {
			timeout = 2 * time.Minute
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		ch := c.changed()
		snap := c.Snapshot()
		if snap.Gen > gen {
			writeJSON(w, http.StatusOK, snap)
			return
		}
		select {
		case <-ch:
		case <-deadline.C:
			writeJSON(w, http.StatusOK, snap)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// handleCoverage renders the live fp8bench -coverage style table.
func (c *Coordinator) handleCoverage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{"GET only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, CoverageText(c.Snapshot()))
}

// CoverageText formats a snapshot as the familiar coverage table.
func CoverageText(snap ProgressSnapshot) string {
	var b []byte
	b = append(b, fmt.Sprintf("%-14s %-22s %7s %7s %8s %8s %8s %9s\n",
		"experiment", "grid", "cells", "done", "failed", "leased", "pending", "complete")...)
	for _, p := range snap.Experiments {
		b = append(b, fmt.Sprintf("%-14s %-22s %7d %7d %8d %8d %8d %8.1f%%\n",
			p.Exp, p.Grid, p.Total, p.Done, p.Failed, p.Leased, p.Pending, p.Percent)...)
	}
	switch {
	case snap.Complete:
		b = append(b, "schedule complete\n"...)
	case snap.Draining:
		b = append(b, "draining: no new leases\n"...)
	}
	return string(b)
}
