package models

import (
	"fp8quant/internal/data"
	"fp8quant/internal/nn"
	"fp8quant/internal/tensor"
)

// dlrmNet is the Deep Learning Recommendation Model: a bottom MLP over
// dense features, EmbeddingBag lookups for categorical features, a
// pairwise dot-product feature interaction, and a top MLP producing a
// CTR score.
type dlrmNet struct {
	Bottom1, Bottom2 *nn.Linear
	Bags             []*nn.EmbeddingBag
	Top1, Top2       *nn.Linear
	dim              int
}

// Kind implements nn.Module.
func (d *dlrmNet) Kind() string { return "DLRM" }

// Visit implements nn.Container.
func (d *dlrmNet) Visit(path string, v nn.Visitor) {
	nn.WalkChild(path+"/bottom1", d.Bottom1, v)
	nn.WalkChild(path+"/bottom2", d.Bottom2, v)
	for i, b := range d.Bags {
		nn.WalkChild(path+"/bag"+string(rune('a'+i)), b, v)
	}
	nn.WalkChild(path+"/top1", d.Top1, v)
	nn.WalkChild(path+"/top2", d.Top2, v)
}

// Forward is unsupported; DLRM consumes a dense+sparse sample.
func (d *dlrmNet) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("models: dlrmNet consumes dense+sparse samples; use Predict")
}

// Predict scores a batch: dense [N, DenseDim] plus categorical bags.
func (d *dlrmNet) Predict(s data.Sample) *tensor.Tensor {
	var relu nn.ReLU
	dense := relu.Forward(d.Bottom1.Forward(s.X))
	dense = relu.Forward(d.Bottom2.Forward(dense)) // [N, dim]
	n := dense.Shape[0]

	// Feature vectors: dense + one per bag table.
	feats := []*tensor.Tensor{dense}
	for _, bag := range d.Bags {
		feats = append(feats, bag.LookupBags(s.Bags))
	}
	// Pairwise dot-product interactions + dense passthrough.
	nf := len(feats)
	nPairs := nf * (nf - 1) / 2
	top := tensor.New(n, d.dim+nPairs)
	for ni := 0; ni < n; ni++ {
		copy(top.Data[ni*(d.dim+nPairs):], dense.Data[ni*d.dim:(ni+1)*d.dim])
		k := d.dim
		for i := 0; i < nf; i++ {
			for j := i + 1; j < nf; j++ {
				var dot float32
				fi := feats[i].Data[ni*d.dim : (ni+1)*d.dim]
				fj := feats[j].Data[ni*d.dim : (ni+1)*d.dim]
				for z := range fi {
					dot += fi[z] * fj[z]
				}
				top.Data[ni*(d.dim+nPairs)+k] = dot
				k++
			}
		}
	}
	var sig nn.Sigmoid
	h := relu.Forward(d.Top1.Forward(top))
	return sig.Forward(d.Top2.Forward(h)) // [N, 1] CTR score
}

func buildDLRM(info Info, seed uint64) *Network {
	r := tensor.NewRNG(seed)
	const denseDim, dim, vocab = 13, 8, 64
	net := &dlrmNet{
		Bottom1: nn.NewLinear(denseDim, 16),
		Bottom2: nn.NewLinear(16, dim),
		Top1:    nn.NewLinear(dim+3, 16),
		Top2:    nn.NewLinear(16, 1),
		dim:     dim,
	}
	for i := 0; i < 2; i++ {
		bag := nn.NewEmbeddingBag(vocab, dim)
		initEmbedding(bag.W, r)
		net.Bags = append(net.Bags, bag)
	}
	initLinear(net.Bottom1, r)
	initLinear(net.Bottom2, r)
	initLinear(net.Top1, r)
	initLinear(net.Top2, r)
	return &Network{
		Meta: info,
		root: net,
		fwd:  func(s data.Sample) *tensor.Tensor { return net.Predict(s) },
		Data: &data.TabularDataset{N: 32, DenseDim: denseDim, Vocab: vocab,
			BagSize: 3, NumBatches: nlpBatches, Seed: seed ^ 0xD12A},
		Classes: 1,
		Eval:    Score,
	}
}

func init() {
	info := Info{Name: "dlrm_criteo", Domain: RecSys, Task: "criteo-sim", SizeMB: 2160}
	register(info, func(seed uint64) *Network { return buildDLRM(info, seed) })
}
