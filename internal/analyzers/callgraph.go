// A small static call graph over the analyzed package set, shared by
// the nondeterm and cellpurity checks. Edges are the statically
// resolvable calls (direct function and method calls); calls through
// function values and interface dispatch are not traversed — kernel
// and codec functions are analysis roots in their own right, so the
// paths that matter to the bit-identity contract stay covered even
// where dynamic dispatch cuts an edge.

package analyzers

import (
	"go/ast"
	"go/types"
	"sort"
)

// graphFunc is one declared function in the analyzed set.
type graphFunc struct {
	pkg  *Package
	decl *ast.FuncDecl
	key  string
	// callees are the funcKeys of statically resolved calls in the
	// body, in source order, first occurrence position retained for
	// reporting.
	callees []calledEdge
}

type calledEdge struct {
	key  string
	call *ast.CallExpr
}

// buildGraph indexes every declared function and its resolvable call
// edges.
func buildGraph(pkgs []*Package) map[string]*graphFunc {
	g := map[string]*graphFunc{}
	eachFuncDecl(pkgs, func(p *Package, d *ast.FuncDecl) {
		fn := &graphFunc{pkg: p, decl: d, key: declKey(p, d)}
		ast.Inspect(d.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if f := calleeFunc(p.Info, call); f != nil {
				fn.callees = append(fn.callees, calledEdge{key: funcKey(f), call: call})
			}
			return true
		})
		g[fn.key] = fn
	})
	return g
}

// cellRoots returns the funcKeys of every RunCell implementation in
// the set: methods named RunCell, plus any function passed as the
// cell argument (4th positional) to a registerGrid call — the
// project's experiment-registration idiom routes the executor's
// RunCell through those.
func cellRoots(pkgs []*Package) map[string]*graphFunc {
	g := buildGraph(pkgs)
	roots := map[string]*graphFunc{}
	for key, fn := range g {
		if fn.decl.Recv != nil && fn.decl.Name.Name == "RunCell" {
			roots[key] = fn
		}
	}
	for _, p := range pkgs {
		for _, f := range p.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := unparen(call.Fun).(*ast.Ident)
				if !ok || id.Name != "registerGrid" || len(call.Args) < 4 {
					return true
				}
				if cellID, ok := unparen(call.Args[3]).(*ast.Ident); ok {
					if obj, ok := p.Info.Uses[cellID].(*types.Func); ok {
						if fn, ok := g[funcKey(obj)]; ok {
							roots[fn.key] = fn
						}
					}
				}
				return true
			})
		}
	}
	return roots
}

// reachableFrom walks the call graph from the given roots and returns,
// for every reachable function key, a shortest call chain of function
// keys from a root to it (the root itself maps to a 1-element chain).
// Roots seed the queue in sorted order so the chain chosen for a
// function reachable from several roots is the same on every run —
// map-order seeding would make the "via" part of findings flap.
func reachableFrom(g map[string]*graphFunc, roots map[string]*graphFunc) map[string][]string {
	chains := map[string][]string{}
	queue := sortedKeys(roots)
	for _, key := range queue {
		chains[key] = []string{key}
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		fn, ok := g[cur]
		if !ok {
			continue
		}
		for _, e := range fn.callees {
			if _, seen := chains[e.key]; seen {
				continue
			}
			if _, declared := g[e.key]; !declared {
				continue // outside the analyzed set (stdlib etc.)
			}
			chains[e.key] = append(append([]string{}, chains[cur]...), e.key)
			queue = append(queue, e.key)
		}
	}
	return chains
}

// sortedKeys returns the map's keys in ascending order — the suite's
// own map iterations go through it so fp8vet passes its own mapiter
// check by construction.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// shortName trims the package path off a funcKey for messages.
func shortName(key string) string {
	for i := len(key) - 1; i >= 0; i-- {
		if key[i] == '/' {
			return key[i+1:]
		}
	}
	return key
}

// chainString renders a call chain as "a → b → c" using short names.
func chainString(chain []string) string {
	out := ""
	for i, k := range chain {
		if i > 0 {
			out += " → "
		}
		out += shortName(k)
	}
	return out
}
