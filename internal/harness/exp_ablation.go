package harness

import (
	"fmt"

	"fp8quant/internal/evalx"
	"fp8quant/internal/fp8"
	"fp8quant/internal/quant"
	"fp8quant/internal/tensor"
)

func init() {
	registerGrid("ablation-wgt",
		"Ablation: per-channel vs per-tensor weight scaling (Section 3.1 recommendation)",
		ablationWgtSpec, runAblationWgtCell, renderAblationWgt)
	registerGrid("ablation-calib",
		"Ablation: range-calibration algorithms (max vs KL vs MSE vs percentile)",
		ablationCalibSpec, runAblationCalibCell, renderAblationCalib)
}

// ---- ablation-wgt ----

var ablationWgtDTypes = []quant.DType{quant.E5M2, quant.E4M3, quant.E3M4, quant.INT8}

const ablationWgtSeed = 0xAB1A

// ablationWgtWeight deterministically rebuilds the study weight: 8x
// per-channel std spread (trained-net realism). Each cell builds its
// own copy, so cells quantize in isolation.
func ablationWgtWeight() *tensor.Tensor {
	r := tensor.NewRNG(ablationWgtSeed)
	const out, in = 64, 64
	w := tensor.New(out, in)
	for o := 0; o < out; o++ {
		std := 0.02 * float64(uint(1)<<(uint(o)%4)) // 0.02..0.16
		for i := 0; i < in; i++ {
			w.Data[o*in+i] = float32(std * r.Norm())
		}
	}
	return w
}

func ablationWgtSpec() GridSpec {
	fms := make([]string, len(ablationWgtDTypes))
	for i, d := range ablationWgtDTypes {
		fms[i] = d.String()
	}
	return GridSpec{
		ID:   "ablation-wgt",
		Seed: ablationWgtSeed,
		Axes: []Axis{
			{Name: "format", Values: fms},
			{Name: "granularity", Values: []string{"per-tensor", "per-channel"}},
		},
	}
}

// runAblationWgtCell quantizes one (format, granularity) copy of the
// spread weight and reports its rounding MSE.
func runAblationWgtCell(c Cell) evalx.Result {
	d := ablationWgtDTypes[c.Coords[0]]
	w := ablationWgtWeight()
	q := w.Clone()
	if c.Coords[1] == 0 {
		quant.QuantizeWeightPerTensor(q, d)
	} else {
		quant.QuantizeWeightPerChannel(q, 0, d)
	}
	return evalx.Result{
		Model: "spread-weight", Recipe: d.String() + " " + c.Values[1],
		Metrics: map[string]float64{"mse": tensor.MSE(w.Data, q.Data)},
	}
}

func renderAblationWgt(g *Grid) *Report {
	tb := newTable("format", "per-tensor MSE", "per-channel MSE", "improvement")
	vals := map[string]float64{}
	for fi, d := range ablationWgtDTypes {
		rt, rc := g.At(fi, 0), g.At(fi, 1)
		if rt.Err != "" || rc.Err != "" {
			tb.add(d.String(), "error: "+rt.Err+rc.Err)
			continue
		}
		mseT, mseC := rt.Metrics["mse"], rc.Metrics["mse"]
		imp := mseT / mseC
		tb.add(d.String(), fmt.Sprintf("%.3e", mseT), fmt.Sprintf("%.3e", mseC),
			fmt.Sprintf("%.1fx", imp))
		vals["ratio_"+d.String()] = imp
	}
	return &Report{
		Text: "Weight-scaling granularity ablation: per-channel scales recover the encoding\n" +
			"range lost to per-channel std spread. (FP8's log grid is partially immune;\n" +
			"INT8's uniform grid benefits most — both still improve.)\n\n" + tb.String(),
		Values: vals,
	}
}

// ---- ablation-calib ----

var ablationCalibMethods = []quant.CalibMethod{
	quant.CalibMax, quant.CalibKL, quant.CalibMSE, quant.CalibPercentile,
}

const ablationCalibSeed = 0xAB1B

// ablationCalibTensor deterministically rebuilds the outlier-rich
// study tensor; each cell owns its copy and its observer.
func ablationCalibTensor() []float32 {
	r := tensor.NewRNG(ablationCalibSeed)
	x := make([]float32, 65536)
	for i := range x {
		x[i] = float32(r.Norm())
	}
	for i := 0; i < len(x)/200; i++ {
		x[r.Intn(len(x))] = float32(r.Uniform(30, 40))
	}
	return x
}

func ablationCalibSpec() GridSpec {
	ms := make([]string, len(ablationCalibMethods))
	for i, m := range ablationCalibMethods {
		ms[i] = m.String()
	}
	return GridSpec{
		ID:   "ablation-calib",
		Seed: ablationCalibSeed,
		Axes: []Axis{{Name: "method", Values: ms}},
	}
}

func runAblationCalibCell(c Cell) evalx.Result {
	m := ablationCalibMethods[c.Index]
	x := ablationCalibTensor()
	obs := quant.NewObserver(m)
	obs.Observe(x)
	th := quant.CalibratedThreshold(obs, m, func(t float64) quant.Quantizer {
		return quant.NewScaledFP8(fp8.E4M3, t)
	})
	mse := quantMSE(x, clipThen(th, func(v float64) float64 {
		scale := fp8.E4M3.MaxValue() / th
		return fp8.E4M3.Quantize(v*scale) / scale
	}))
	return evalx.Result{
		Model: "nlp-outliers", Recipe: m.String(),
		Metrics: map[string]float64{"threshold": th, "mse": mse},
	}
}

func renderAblationCalib(g *Grid) *Report {
	tb := newTable("tensor", "method", "threshold", "E4M3 MSE")
	vals := map[string]float64{}
	for i, m := range ablationCalibMethods {
		r := g.Results[i]
		if r.Err != "" {
			tb.add("nlp-outliers", m.String(), "error: "+r.Err, "")
			continue
		}
		tb.add("nlp-outliers", m.String(), fmt.Sprintf("%.2f", r.Metrics["threshold"]), fmt.Sprintf("%.3e", r.Metrics["mse"]))
		vals["mse_"+m.String()] = r.Metrics["mse"]
	}
	return &Report{
		Text: "Range-calibration ablation on an outlier-rich tensor: for E4M3, max scaling\n" +
			"is within noise of (or better than) KL/MSE/percentile clipping — the paper's\n" +
			"finding that sophisticated calibration brings no benefit for FP8.\n\n" + tb.String(),
		Values: vals,
	}
}
