package nn

import (
	"fmt"

	"fp8quant/internal/tensor"
	"fp8quant/internal/tensor/kernels"
)

// Linear is a fully-connected layer: y = x·Wᵀ + b. The weight is stored
// as [Out, In] so that per-channel (per-output-row) scaling matches the
// paper's recommended weight quantization granularity.
type Linear struct {
	In, Out int
	// W has shape [Out, In].
	W *tensor.Tensor
	// B has length Out; may be nil for no bias.
	B []float32
	// QS holds quantization hooks for the input activation.
	QS QState
}

// NewLinear allocates a Linear layer with zero weights.
func NewLinear(in, out int) *Linear {
	return &Linear{In: in, Out: out, W: tensor.New(out, in), B: make([]float32, out)}
}

// Kind implements Module.
func (l *Linear) Kind() string { return "Linear" }

// Q implements Quantizable.
func (l *Linear) Q() *QState { return &l.QS }

// WeightTensor implements Parametric.
func (l *Linear) WeightTensor() *tensor.Tensor { return l.W }

// OutChannelDim implements Parametric: rows of W index output channels.
func (l *Linear) OutChannelDim() int { return 0 }

// Forward computes x·Wᵀ + b. x may have any leading shape as long as
// the final dimension equals In; the output replaces it with Out.
func (l *Linear) Forward(x *tensor.Tensor) *tensor.Tensor { return l.ForwardArena(nil, x) }

// ForwardArena implements ArenaForwarder. The weight panel is repacked
// into arena scratch on every call — packing is a pure copy, and the
// weights themselves may be requantized in place between calls, so
// panels are never cached.
func (l *Linear) ForwardArena(a *tensor.Arena, x *tensor.Tensor) *tensor.Tensor {
	rows, cols := flatten2D(x)
	if cols != l.In {
		panic(fmt.Sprintf("nn: Linear expects last dim %d, got shape %v", l.In, x.Shape))
	}
	x = l.QS.applyIn(a, x)
	y := newLike(a, x, l.Out)
	// Bias rides in the GEMM epilogue: acc = Σ_k x·w, then acc += b —
	// the same operation order as the old separate per-row pass.
	if a == nil {
		kernels.GemmT(y.Data, x.Data, l.W.Data, rows, l.In, l.Out, kernels.Opt{Bias: l.B})
	} else {
		// Planned forwards run the kernel serially (the pooled-closure
		// fan-out allocates); parallelism comes from one plan per
		// worker, and the PR 5 contract makes serial vs fanned-out runs
		// byte-identical.
		panel := a.Alloc(kernels.PanelFloats(l.In, l.Out))
		kernels.PackTInto(panel, l.W.Data, l.In, l.Out)
		kernels.GemmPacked(y.Data, x.Data, panel, rows, l.In, l.Out, kernels.Opt{Bias: l.B, Serial: true})
	}
	return l.QS.applyOut(y)
}

// matmulT computes y[r,o] = sum_k x[r,k] * w[o,k] for row-major
// buffers: x is [rows, in], w is [out, in], y is [rows, out].
// Accumulation is float32, matching typical FP8-with-FP32-accumulate
// hardware behaviour emulated by the paper. It is the scalar oracle
// the blocked kernels.GemmT path is pinned against by the
// differential tests in kernels_diff_test.go: a single accumulator in
// ascending-k order, using the active variant's multiply-accumulate
// (two roundings on the generic/sse tiers, the exactly-rounded fused
// step on avx2).
func matmulT(y, x, w []float32, rows, in, out int) {
	madd := kernels.RefMadd(kernels.Active())
	for r := 0; r < rows; r++ {
		xr := x[r*in : (r+1)*in]
		yr := y[r*out : (r+1)*out]
		for o := 0; o < out; o++ {
			wo := w[o*in : (o+1)*in]
			var acc float32
			for k := range xr {
				acc = madd(acc, xr[k], wo[k])
			}
			yr[o] = acc
		}
	}
}

// MatMulOp is an explicit activation×activation matrix multiply leaf
// (torch.matmul between two tensors), quantized only by the extended
// scheme. Both operands are activations, so it carries two input hooks.
type MatMulOp struct {
	// QA and QB quantize the two operands.
	QA, QB QState
}

// Kind implements Module.
func (m *MatMulOp) Kind() string { return "MatMul" }

// Q returns the first operand's QState (Quantizable interface); use QB
// for the second operand.
func (m *MatMulOp) Q() *QState { return &m.QA }

// Forward is unsupported: MatMulOp is binary. Use Apply.
func (m *MatMulOp) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: MatMulOp is binary; call Apply(a, b)")
}

// Apply multiplies a [.., M, K] by b [.., K, N] treating leading
// dimensions as batch (they must match); returns [.., M, N].
func (m *MatMulOp) Apply(a, b *tensor.Tensor) *tensor.Tensor {
	return m.ApplyArena(nil, a, b)
}

// ApplyArena is Apply with intermediates carved from ar. The b operand
// is the one the GEMM packs into panels, so when its QState carries a
// fused quantizer the fake-quant folds into packing — no quantized
// copy of b is materialized, and the result is bit-identical to the
// copy path by the RowQuantFactory contract.
func (m *MatMulOp) ApplyArena(ar *tensor.Arena, a, b *tensor.Tensor) *tensor.Tensor {
	a = m.QA.applyIn(ar, a)
	if q := m.QB.fusedQuant(b); q != nil {
		return batchMatMul(ar, a, b, false, q)
	}
	b = m.QB.applyIn(ar, b)
	return batchMatMul(ar, a, b, false, nil)
}

// BatchMatMulOp is the BMM leaf used inside attention (QKᵀ and PV).
type BatchMatMulOp struct {
	QA, QB QState
	// TransposeB multiplies by bᵀ over the last two dims.
	TransposeB bool
}

// Kind implements Module.
func (m *BatchMatMulOp) Kind() string { return "BatchMatMul" }

// Q returns the first operand's QState.
func (m *BatchMatMulOp) Q() *QState { return &m.QA }

// Forward is unsupported: BatchMatMulOp is binary. Use Apply.
func (m *BatchMatMulOp) Forward(x *tensor.Tensor) *tensor.Tensor {
	panic("nn: BatchMatMulOp is binary; call Apply(a, b)")
}

// Apply performs the batched multiply.
func (m *BatchMatMulOp) Apply(a, b *tensor.Tensor) *tensor.Tensor {
	return m.ApplyArena(nil, a, b)
}

// ApplyArena is Apply with intermediates carved from ar; like
// MatMulOp, a fused quantizer on the b operand folds into panel
// packing.
func (m *BatchMatMulOp) ApplyArena(ar *tensor.Arena, a, b *tensor.Tensor) *tensor.Tensor {
	a = m.QA.applyIn(ar, a)
	if q := m.QB.fusedQuant(b); q != nil {
		return batchMatMul(ar, a, b, m.TransposeB, q)
	}
	b = m.QB.applyIn(ar, b)
	return batchMatMul(ar, a, b, m.TransposeB, nil)
}

// BatchMatMul multiplies batched matrices: a is [batch..., M, K] and b
// is [batch..., K, N] (or [batch..., N, K] when transB). Leading batch
// dims must match exactly.
func BatchMatMul(a, b *tensor.Tensor, transB bool) *tensor.Tensor {
	return BatchMatMulArena(nil, a, b, transB)
}

// BatchMatMulArena is BatchMatMul with the output (and one packed
// panel, reused across batch elements) carved from ar. The arena path
// runs batch elements serially through the same packed kernels the
// parallel path uses; the kernels' bit-identity contract makes the
// results byte-equal for any fan-out.
func BatchMatMulArena(ar *tensor.Arena, a, b *tensor.Tensor, transB bool) *tensor.Tensor {
	return batchMatMul(ar, a, b, transB, nil)
}

// batchMatMul is the shared batched-multiply body. A non-nil q is a
// chunkable fake-quantizer (whole-tensor statistics already bound, see
// QState.fusedQuant) applied to b during panel packing — the fused
// form of quantize-b-then-multiply, byte-identical to it.
func batchMatMul(ar *tensor.Arena, a, b *tensor.Tensor, transB bool, q kernels.QuantFunc) *tensor.Tensor {
	if a.Rank() < 2 || b.Rank() < 2 {
		panic("nn: BatchMatMul needs rank >= 2")
	}
	M := a.Shape[a.Rank()-2]
	K := a.Shape[a.Rank()-1]
	var N, bK int
	if transB {
		N = b.Shape[b.Rank()-2]
		bK = b.Shape[b.Rank()-1]
	} else {
		bK = b.Shape[b.Rank()-2]
		N = b.Shape[b.Rank()-1]
	}
	if bK != K {
		panic(fmt.Sprintf("nn: BatchMatMul inner dims mismatch: %v x %v (transB=%v)", a.Shape, b.Shape, transB))
	}
	batch := a.Len() / (M * K)
	if b.Len()/(bqSize(transB, K, N)) != batch {
		panic(fmt.Sprintf("nn: BatchMatMul batch mismatch: %v x %v", a.Shape, b.Shape))
	}
	y := newLike2(ar, a, M, N)
	// Both layouts route through the packed GEMM kernels; per output
	// element the accumulation stays ascending-k, matching the old
	// matmulT (transB) and k-outer (natural) loops bit for bit.
	if ar != nil {
		panel := ar.Alloc(kernels.PanelFloats(K, N))
		var stage []float32
		if q != nil {
			stage = ar.Alloc(kernels.QuantStageFloats(K, N))
		}
		for bi := 0; bi < batch; bi++ {
			am := a.Data[bi*M*K : (bi+1)*M*K]
			bm := b.Data[bi*K*N : (bi+1)*K*N]
			ym := y.Data[bi*M*N : (bi+1)*M*N]
			// Repacking overwrites the panel fully (including the
			// zero tail), so reuse across batch elements is exact.
			switch {
			case q != nil && transB:
				kernels.PackTQuantInto(panel, stage, bm, K, N, q)
			case q != nil:
				kernels.PackNQuantInto(panel, stage, bm, K, N, q)
			case transB:
				kernels.PackTInto(panel, bm, K, N)
			default:
				kernels.PackNInto(panel, bm, K, N)
			}
			kernels.GemmPacked(ym, am, panel, M, K, N, kernels.Opt{Serial: true})
		}
		return y
	}
	if batch == 1 {
		batchMatMulOne(y.Data, a.Data, b.Data, M, K, N, transB, false, q)
		return y
	}
	tensor.ParallelFor(batch, 1, func(lo, hi int) {
		for bi := lo; bi < hi; bi++ {
			am := a.Data[bi*M*K : (bi+1)*M*K]
			bm := b.Data[bi*K*N : (bi+1)*K*N]
			ym := y.Data[bi*M*N : (bi+1)*M*N]
			batchMatMulOne(ym, am, bm, M, K, N, transB, true, q)
		}
	})
	return y
}

// newLike2 carves the [.., M, N] output shape for a batched matmul
// whose batch dims come from a, without heap-allocating the shape.
func newLike2(ar *tensor.Arena, a *tensor.Tensor, M, N int) *tensor.Tensor {
	var buf [8]int
	r := a.Rank()
	if r > len(buf) {
		shape := append(append([]int(nil), a.Shape[:r-2]...), M, N)
		return ar.New(shape...)
	}
	copy(buf[:r-2], a.Shape[:r-2])
	buf[r-2], buf[r-1] = M, N
	return ar.New(buf[:r]...)
}

// batchMatMulOne multiplies one batch element through the blocked
// kernels; serial kernels are used when the batch loop itself is the
// parallel axis. A non-nil q routes through the fused-quant entry
// points (quantize-during-pack).
func batchMatMulOne(y, a, b []float32, M, K, N int, transB, serial bool, q kernels.QuantFunc) {
	opt := kernels.Opt{Serial: serial}
	switch {
	case q != nil && transB:
		kernels.GemmTQuant(y, a, b, M, K, N, q, opt)
	case q != nil:
		kernels.GemmNQuant(y, a, b, M, K, N, q, opt)
	case transB:
		kernels.GemmT(y, a, b, M, K, N, opt)
	default:
		kernels.GemmN(y, a, b, M, K, N, opt)
	}
}

func bqSize(transB bool, k, n int) int { return k * n }
