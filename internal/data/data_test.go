package data

import (
	"math"
	"testing"
	"testing/quick"

	"fp8quant/internal/tensor"
)

func TestImageDatasetDeterministic(t *testing.T) {
	d := &ImageDataset{N: 2, C: 3, H: 8, W: 8, NumBatches: 3, Seed: 1}
	a := d.Batch(1)
	b := d.Batch(1)
	for i := range a.X.Data {
		if a.X.Data[i] != b.X.Data[i] {
			t.Fatal("Batch(i) must be deterministic")
		}
	}
	c := d.Batch(2)
	same := true
	for i := range a.X.Data {
		if a.X.Data[i] != c.X.Data[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different batch indices must differ")
	}
	if a.BatchSize() != 2 {
		t.Errorf("BatchSize = %d", a.BatchSize())
	}
}

func TestImageDatasetSpatialStructure(t *testing.T) {
	// Neighbouring pixels must be correlated (blobs/gradients), unlike
	// white noise: check lag-1 autocorrelation is clearly positive.
	d := &ImageDataset{N: 4, C: 1, H: 16, W: 16, NumBatches: 1, Seed: 7}
	x := d.Batch(0).X
	var num, den float64
	mu := x.Mean()
	for n := 0; n < 4; n++ {
		for y := 0; y < 16; y++ {
			for xx := 0; xx+1 < 16; xx++ {
				a := float64(x.At(n, 0, y, xx)) - mu
				b := float64(x.At(n, 0, y, xx+1)) - mu
				num += a * b
				den += a * a
			}
		}
	}
	if num/den < 0.3 {
		t.Errorf("lag-1 autocorrelation = %v, want > 0.3", num/den)
	}
}

func TestTokenDatasetRange(t *testing.T) {
	d := &TokenDataset{N: 4, T: 16, Vocab: 50, NumBatches: 2, Seed: 3}
	s := d.Batch(0)
	if len(s.Tokens) != 4 || len(s.Tokens[0]) != 16 {
		t.Fatalf("token shape %dx%d", len(s.Tokens), len(s.Tokens[0]))
	}
	for _, seq := range s.Tokens {
		for _, id := range seq {
			if id < 0 || id >= 50 {
				t.Fatalf("token %d out of range", id)
			}
		}
	}
}

func TestTokenZipfSkew(t *testing.T) {
	// Low ids must be much more frequent than high ids.
	d := &TokenDataset{N: 32, T: 32, Vocab: 100, NumBatches: 1, Seed: 9}
	counts := make([]int, 100)
	for _, seq := range d.Batch(0).Tokens {
		for _, id := range seq {
			counts[id]++
		}
	}
	lo, hi := 0, 0
	for i := 0; i < 10; i++ {
		lo += counts[i]
	}
	for i := 90; i < 100; i++ {
		hi += counts[i]
	}
	if lo <= hi*2 {
		t.Errorf("zipf skew too weak: first-decile=%d last-decile=%d", lo, hi)
	}
}

func TestTabularDataset(t *testing.T) {
	d := &TabularDataset{N: 8, DenseDim: 13, Vocab: 100, BagSize: 3, NumBatches: 1, Seed: 2}
	s := d.Batch(0)
	if s.X.Shape[1] != 13 || len(s.Bags) != 8 || len(s.Bags[0]) != 3 {
		t.Fatalf("tabular shapes wrong")
	}
	if s.BatchSize() != 8 {
		t.Errorf("BatchSize = %d", s.BatchSize())
	}
}

func TestAudioDatasetBounded(t *testing.T) {
	d := &AudioDataset{N: 2, T: 64, NumBatches: 1, Seed: 4}
	x := d.Batch(0).X
	if x.Shape[0] != 2 || x.Shape[2] != 64 {
		t.Fatalf("audio shape %v", x.Shape)
	}
	if x.AbsMax() > 10 {
		t.Errorf("audio absmax %v too large", x.AbsMax())
	}
	// Must have signal, not all zeros.
	if x.Std() < 0.1 {
		t.Errorf("audio std %v too small", x.Std())
	}
}

func TestAugmentTrainingChangesData(t *testing.T) {
	d := &ImageDataset{N: 2, C: 1, H: 8, W: 8, NumBatches: 1, Seed: 5}
	x := d.Batch(0).X
	y := AugmentTraining(x, tensor.NewRNG(11))
	if x.Len() != y.Len() {
		t.Fatal("augment must preserve shape")
	}
	diff := 0
	for i := range x.Data {
		if x.Data[i] != y.Data[i] {
			diff++
		}
	}
	if diff < x.Len()/4 {
		t.Errorf("training augment changed only %d/%d values", diff, x.Len())
	}
}

func TestAugmentInferenceDeterministic(t *testing.T) {
	d := &ImageDataset{N: 2, C: 1, H: 8, W: 8, NumBatches: 1, Seed: 5}
	x := d.Batch(0).X
	y1 := AugmentInference(x, tensor.NewRNG(1))
	y2 := AugmentInference(x, tensor.NewRNG(999))
	for i := range y1.Data {
		if y1.Data[i] != y2.Data[i] {
			t.Fatal("inference transform must ignore RNG")
		}
	}
	// Per-image mean ~0 after the transform.
	per := y1.Len() / 2
	for n := 0; n < 2; n++ {
		var mu float64
		for _, v := range y1.Data[n*per : (n+1)*per] {
			mu += float64(v)
		}
		if math.Abs(mu/float64(per)) > 1e-5 {
			t.Errorf("image %d mean = %v after inference transform", n, mu/float64(per))
		}
	}
}

func TestArgmaxAndAccuracy(t *testing.T) {
	if Argmax([]float32{0.1, 0.9, 0.5}) != 1 {
		t.Error("argmax wrong")
	}
	tl := tensor.FromSlice([]float32{1, 2, 3, 9, 5, 6}, 2, 3)
	am := ArgmaxRows(tl)
	if am[0] != 2 || am[1] != 0 {
		t.Errorf("argmax rows = %v", am)
	}
	if got := Accuracy([]int{1, 2, 3}, []int{1, 0, 3}); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("accuracy = %v", got)
	}
}

func TestTopKAccuracy(t *testing.T) {
	logits := tensor.FromSlice([]float32{5, 4, 3, 2}, 1, 4)
	if got := TopKAccuracy(logits, []int{2}, 1); got != 0 {
		t.Errorf("top1 = %v", got)
	}
	if got := TopKAccuracy(logits, []int{2}, 3); got != 1 {
		t.Errorf("top3 = %v", got)
	}
}

func TestF1AndMCC(t *testing.T) {
	pred := []int{1, 1, 0, 0, 1}
	lab := []int{1, 0, 0, 1, 1}
	// tp=2 fp=1 fn=1 -> F1 = 4/6.
	if got := F1Binary(pred, lab); math.Abs(got-2.0/3) > 1e-9 {
		t.Errorf("f1 = %v", got)
	}
	if got := MatthewsCorr(pred, pred); math.Abs(got-1) > 1e-9 {
		t.Errorf("mcc self = %v", got)
	}
	inv := []int{0, 0, 1, 1, 0}
	if got := MatthewsCorr(pred, inv); math.Abs(got+1) > 1e-9 {
		t.Errorf("mcc inverse = %v", got)
	}
}

func TestPearson(t *testing.T) {
	a := []float64{1, 2, 3, 4}
	if got := Pearson(a, a); math.Abs(got-1) > 1e-9 {
		t.Errorf("pearson self = %v", got)
	}
	b := []float64{4, 3, 2, 1}
	if got := Pearson(a, b); math.Abs(got+1) > 1e-9 {
		t.Errorf("pearson anti = %v", got)
	}
}

func TestFIDProperties(t *testing.T) {
	r := tensor.NewRNG(13)
	f1 := tensor.New(200, 8)
	f1.FillNormal(r, 0, 1)
	s1 := ComputeFIDStats(f1)
	if got := FID(s1, s1); got != 0 {
		t.Errorf("FID(X,X) = %v, want 0", got)
	}
	f2 := tensor.New(200, 8)
	f2.FillNormal(r, 1, 1) // shifted mean
	s2 := ComputeFIDStats(f2)
	d12 := FID(s1, s2)
	if d12 <= 0 {
		t.Errorf("FID of shifted distributions = %v, want > 0", d12)
	}
	// Symmetric.
	if math.Abs(d12-FID(s2, s1)) > 1e-9 {
		t.Error("FID must be symmetric")
	}
	// Bigger shift -> bigger FID.
	f3 := tensor.New(200, 8)
	f3.FillNormal(r, 3, 1)
	if FID(s1, ComputeFIDStats(f3)) <= d12 {
		t.Error("FID must grow with distribution shift")
	}
}

// Property: FID is non-negative for arbitrary stats.
func TestFIDNonNegative(t *testing.T) {
	prop := func(m1, m2, v1, v2 float64) bool {
		if math.IsNaN(m1) || math.IsNaN(m2) || math.IsNaN(v1) || math.IsNaN(v2) {
			return true
		}
		a := FIDStats{Mean: []float64{m1}, Var: []float64{math.Abs(v1)}}
		b := FIDStats{Mean: []float64{m2}, Var: []float64{math.Abs(v2)}}
		return FID(a, b) >= 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRelativeLossAndPass(t *testing.T) {
	if got := RelativeLoss(0.8, 0.792); math.Abs(got-0.01) > 1e-9 {
		t.Errorf("relative loss = %v", got)
	}
	if !Passes(0.8, 0.792) {
		t.Error("exactly 1% loss should pass")
	}
	if Passes(0.8, 0.79) {
		t.Error("1.25% loss should fail")
	}
	if !Passes(0.8, 0.85) {
		t.Error("accuracy gain should pass")
	}
}
