package tensor

import (
	"math"
	"sort"
)

// MSE returns the mean squared error between two equal-length slices.
func MSE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: MSE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		d := float64(a[i]) - float64(b[i])
		s += d * d
	}
	return s / float64(len(a))
}

// MAE returns the mean absolute error between two equal-length slices.
func MAE(a, b []float32) float64 {
	if len(a) != len(b) {
		panic("tensor: MAE length mismatch")
	}
	if len(a) == 0 {
		return 0
	}
	s := 0.0
	for i := range a {
		s += math.Abs(float64(a[i]) - float64(b[i]))
	}
	return s / float64(len(a))
}

// SQNR returns the signal-to-quantization-noise ratio in dB between a
// reference signal and its quantized version.
func SQNR(ref, quant []float32) float64 {
	var sig, noise float64
	for i := range ref {
		s := float64(ref[i])
		d := s - float64(quant[i])
		sig += s * s
		noise += d * d
	}
	if noise == 0 {
		return math.Inf(1)
	}
	return 10 * math.Log10(sig/noise)
}

// Percentile returns the p-th percentile (p in [0,100]) of the data
// using linear interpolation. The input is not modified.
func Percentile(data []float32, p float64) float64 {
	if len(data) == 0 {
		return 0
	}
	s := make([]float64, len(data))
	for i, v := range data {
		s[i] = float64(v)
	}
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	pos := p / 100 * float64(len(s)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(s) {
		return s[len(s)-1]
	}
	return s[lo]*(1-frac) + s[lo+1]*frac
}

// Histogram is a uniform-bin histogram over [Min, Max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Total    int
}

// NewHistogram builds a histogram of data with the given number of bins
// spanning [min, max]; values outside are clamped into the edge bins.
func NewHistogram(data []float32, bins int, min, max float64) *Histogram {
	if bins <= 0 {
		panic("tensor: histogram needs at least one bin")
	}
	if max <= min {
		max = min + 1
	}
	h := &Histogram{Min: min, Max: max, Counts: make([]int, bins)}
	w := (max - min) / float64(bins)
	for _, v := range data {
		f := float64(v)
		if math.IsNaN(f) {
			continue
		}
		b := int((f - min) / w)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
		h.Total++
	}
	return h
}

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Max - h.Min) / float64(len(h.Counts))
	return h.Min + (float64(i)+0.5)*w
}

// Normalized returns the histogram as a probability distribution.
func (h *Histogram) Normalized() []float64 {
	p := make([]float64, len(h.Counts))
	if h.Total == 0 {
		return p
	}
	for i, c := range h.Counts {
		p[i] = float64(c) / float64(h.Total)
	}
	return p
}

// KLDivergence computes KL(p || q) over two distributions with the
// standard smoothing used by TensorRT-style calibration: zero bins in q
// receive a tiny epsilon so the divergence stays finite.
func KLDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		panic("tensor: KL length mismatch")
	}
	const eps = 1e-12
	d := 0.0
	for i := range p {
		if p[i] <= 0 {
			continue
		}
		qi := q[i]
		if qi < eps {
			qi = eps
		}
		d += p[i] * math.Log(p[i]/qi)
	}
	return d
}

// CosineSimilarity returns the cosine of the angle between two vectors,
// used by the auto-tuner to score layer output fidelity cheaply.
func CosineSimilarity(a, b []float32) float64 {
	var dot, na, nb float64
	for i := range a {
		x, y := float64(a[i]), float64(b[i])
		dot += x * y
		na += x * x
		nb += y * y
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / math.Sqrt(na*nb)
}
