// Native fuzz targets pinning the fast codec to the scalar oracle on
// arbitrary inputs. The deterministic suites in fast_test.go sweep
// dense structured ranges; fuzzing explores the float32 space (and the
// scale/rescale space of the fused kernel) adversarially, so any
// rounding divergence between the bit-level encoder and the float64
// reference path becomes a crash with a minimized reproducer. Run
// continuously with:
//
//	go test -run=NONE -fuzz=FuzzEncodeRoundTrip ./internal/fp8
//	go test -run=NONE -fuzz=FuzzQuantizeScaledSlice ./internal/fp8
//
// CI runs each for a short bounded pass; the checked-in corpora under
// testdata/fuzz seed both with the historically nasty inputs
// (subnormals, overflow boundary, NaN payloads, extended-format max).

package fp8

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFormats are the codec-eligible formats both fuzz targets pin:
// the three paper formats plus generic and bias-shifted variants
// (mirrors testFormats in fast_test.go without needing a *testing.T).
var fuzzFormats = func() []Format {
	fs := []Format{E5M2, E4M3, E3M4}
	if g, err := New(2, 5, false); err == nil {
		fs = append(fs, g)
	}
	if g, err := New(5, 2, false); err == nil {
		fs = append(fs, g)
	}
	return append(fs, E4M3.WithBias(11), E3M4.WithBias(1))
}()

// interestingBits are seed inputs for the encode fuzzer: zeros, the
// subnormal boundary, the overflow boundary of each format family,
// infinities and NaN payloads.
var interestingBits = []uint32{
	0x00000000, // +0
	0x80000000, // -0
	0x00000001, // smallest float32 subnormal
	0x00800000, // smallest float32 normal
	0x3F800000, // 1.0
	0x3FC00000, // 1.5 (tie cases)
	0x43700000, // 240 (E4M3 max)
	0x43700001, // just past E4M3 max
	0x477FE000, // 65504 (E5M2-ish max)
	0x7F7FFFFF, // float32 max
	0x7F800000, // +Inf
	0xFF800000, // -Inf
	0x7FC00000, // quiet NaN
	0x7F800001, // signalling NaN payload
	0x38D1B717, // 1e-4 (deep subnormal for most formats)
	0xB8D1B717, // -1e-4
}

// FuzzEncodeRoundTrip checks, for arbitrary float32 bit patterns, that
// the bit-level encoder matches the scalar float64 oracle code-exactly
// and that quantization is idempotent (a representable value must be a
// fixed point of Quantize).
func FuzzEncodeRoundTrip(f *testing.F) {
	for _, bits := range interestingBits {
		f.Add(bits)
	}
	f.Fuzz(func(t *testing.T, bits uint32) {
		x := math.Float32frombits(bits)
		for _, format := range fuzzFormats {
			c := format.Codec()
			got, want := c.Encode(x), format.Encode(float64(x))
			if got != want {
				t.Fatalf("%s: Encode(%v = %#08x) fast %#02x != ref %#02x",
					format, x, bits, got, want)
			}
			// Decode agreement on the produced code.
			if d, ref := c.Decode(got), format.Decode(got); !sameFloat32(d, float32(ref)) {
				t.Fatalf("%s: Decode(%#02x) fast %v != ref %v", format, got, d, ref)
			}
			// Idempotence: quantizing a representable value is identity.
			q := c.Quantize(x)
			if qq := c.Quantize(q); !sameFloat32(qq, q) {
				t.Fatalf("%s: Quantize not idempotent at %v: %v -> %v", format, x, q, qq)
			}
		}
	})
}

// FuzzQuantizeScaledSlice checks the fused scale+quantize+rescale
// kernel stays bit-identical to the unfused scalar expression
// float32(Quantize(float64(v*scale)))*inv for arbitrary inputs, scales
// and rescales — on both the short path and the table-driven path
// (the input is tiled past rescaleMin to force the fused loop).
func FuzzQuantizeScaledSlice(f *testing.F) {
	f.Add([]byte{0, 0, 128, 63, 0, 0, 0, 68}, uint32(0x3F800000), uint32(0x3F800000))
	f.Add([]byte{1, 0, 0, 0, 255, 255, 127, 127}, uint32(0x42C80000), uint32(0x3C23D70A))
	f.Add([]byte{0, 0, 192, 255}, uint32(0x7F800000), uint32(0x00000000))
	f.Add([]byte{0, 0, 112, 67, 23, 183, 209, 56}, uint32(0x3F000000), uint32(0x40000000))
	f.Fuzz(func(t *testing.T, data []byte, scaleBits, invBits uint32) {
		n := len(data) / 4
		if n == 0 {
			return
		}
		src := make([]float32, n)
		for i := 0; i < n; i++ {
			src[i] = math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
		}
		scale := math.Float32frombits(scaleBits)
		inv := math.Float32frombits(invBits)
		// Tile the fuzz input past rescaleMin so the fused table path
		// runs too, not just the short loop.
		long := make([]float32, rescaleMin+n)
		for i := range long {
			long[i] = src[i%n]
		}
		for _, format := range fuzzFormats {
			c := format.Codec()
			for _, in := range [][]float32{src, long} {
				got := c.QuantizeScaledSlice(make([]float32, len(in)), in, scale, inv)
				for i, v := range in {
					want := float32(format.Quantize(float64(v*scale))) * inv
					if !sameFloat32(got[i], want) {
						t.Fatalf("%s: QuantizeScaledSlice[%d] (v=%v scale=%v inv=%v, len=%d) = %v, want %v",
							format, i, v, scale, inv, len(in), got[i], want)
					}
				}
			}
		}
	})
}
